"""Unit tests for the core algorithm's message types."""

import pytest

from repro.core.messages import (
    CounterEnvelope,
    CounterValue,
    ReqCnt,
    ReqLoan,
    ReqRes,
    RequestEnvelope,
    TokenEnvelope,
)
from repro.core.token import ResourceToken


class TestRequestKinds:
    def test_reqcnt_fields(self):
        r = ReqCnt(resource=2, sinit=1, req_id=3)
        assert (r.resource, r.sinit, r.req_id) == (2, 1, 3)

    def test_reqres_carries_mark(self):
        r = ReqRes(resource=2, sinit=1, req_id=3, mark=4.5)
        assert r.mark == 4.5

    def test_reqloan_carries_missing_set(self):
        r = ReqLoan(resource=2, sinit=1, req_id=3, mark=1.0, missing=frozenset({2, 5}))
        assert r.missing == frozenset({2, 5})

    def test_requests_are_hashable_and_immutable(self):
        r = ReqRes(resource=0, sinit=1, req_id=1, mark=2.0)
        assert hash(r) == hash(ReqRes(resource=0, sinit=1, req_id=1, mark=2.0))
        with pytest.raises(AttributeError):
            r.mark = 3.0  # type: ignore[misc]


class TestEnvelopes:
    def test_request_envelope_requires_requests(self):
        with pytest.raises(ValueError):
            RequestEnvelope(visited=frozenset({0}), requests=())

    def test_request_envelope_holds_visited_set(self):
        env = RequestEnvelope(
            visited=frozenset({0, 1}),
            requests=(ReqCnt(resource=0, sinit=0, req_id=1),),
        )
        assert env.visited == frozenset({0, 1})

    def test_counter_envelope_requires_values(self):
        with pytest.raises(ValueError):
            CounterEnvelope(counters=())

    def test_counter_envelope_contents(self):
        env = CounterEnvelope(counters=(CounterValue(resource=1, value=7),))
        assert env.counters[0].value == 7

    def test_token_envelope_requires_tokens(self):
        with pytest.raises(ValueError):
            TokenEnvelope(tokens=())

    def test_token_envelope_contents(self):
        env = TokenEnvelope(tokens=(ResourceToken(resource=4),))
        assert env.tokens[0].resource == 4
