"""Tests of the Section 4.6.1 single-resource fast path (optional extension)."""

import random

import pytest

from repro.core.config import CoreConfig

from tests.helpers import assert_all_completed, build_system, run_scripted


def config(enabled: bool) -> CoreConfig:
    return CoreConfig(enable_loan=True, single_resource_optimization=enabled)


class TestFastPath:
    def test_single_resource_request_skips_counter_phase(self):
        """With the optimisation on, the requester never enters waitS."""
        system = build_system("core", num_processes=3, num_resources=2, gamma=1.0,
                              core_config=config(True))
        metrics = run_scripted(system, [(0.0, 1, frozenset({0}), 5.0)])
        assert_all_completed(metrics)
        states = [e.details["to"] for e in system.trace.events(kind="state", node=1)]
        assert states[0] == "waitCS"
        assert "waitS" not in states

    def test_fast_path_reduces_message_count_under_contention(self):
        """When the holder is using the resource, the fast path saves the
        Counter + ReqRes exchange (2 messages) per single-resource request."""
        def run(enabled: bool):
            system = build_system("core", num_processes=3, num_resources=2, gamma=1.0,
                                  core_config=config(enabled))
            metrics = run_scripted(
                system,
                [
                    (0.0, 0, frozenset({0}), 30.0),
                    (1.0, 1, frozenset({0}), 5.0),
                ],
            )
            assert_all_completed(metrics)
            return system.network.stats.total, metrics.record_for(1, 0).waiting_time

        fast_msgs, fast_wait = run(True)
        slow_msgs, slow_wait = run(False)
        assert fast_msgs < slow_msgs
        # The waiting time is dominated by the holder's critical section in
        # both cases.
        assert fast_wait <= slow_wait + 1e-9

    def test_multi_resource_requests_unaffected(self):
        system = build_system("core", num_processes=3, num_resources=3, gamma=1.0,
                              core_config=config(True))
        metrics = run_scripted(system, [(0.0, 1, frozenset({0, 1}), 5.0)])
        assert_all_completed(metrics)
        states = [e.details["to"] for e in system.trace.events(kind="state", node=1)]
        assert states[0] == "waitS"

    def test_contended_single_resource_requests_are_serialized(self):
        system = build_system("core", num_processes=5, num_resources=1, gamma=0.5,
                              core_config=config(True))
        metrics = run_scripted(
            system, [(0.0, p, frozenset({0}), 4.0) for p in range(5)]
        )
        assert_all_completed(metrics)
        intervals = sorted((r.grant_time, r.release_time) for r in metrics.records)
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2

    @pytest.mark.parametrize("seed", [2, 11])
    def test_mixed_workload_safe_and_live(self, seed):
        rng = random.Random(seed)
        system = build_system("core", num_processes=6, num_resources=6, gamma=0.5,
                              core_config=config(True))
        requests = []
        for wave in range(4):
            for p in range(6):
                size = rng.choice([1, 1, 2, 3])   # bias towards single-resource
                resources = frozenset(rng.sample(range(6), size))
                requests.append((wave * 6.0 + rng.random(), p, resources,
                                 rng.uniform(2.0, 5.0)))
        metrics = run_scripted(system, requests, max_events=3_000_000)
        assert_all_completed(metrics)

    def test_local_single_resource_request_still_immediate(self):
        system = build_system("core", num_processes=2, num_resources=2, gamma=1.0,
                              core_config=config(True))
        granted = []
        system.allocators[0].acquire({0}, lambda: granted.append(system.sim.now))
        assert granted == [0.0]
