"""Qualitative reproduction checks of the paper's headline findings.

These tests run scaled-down versions of the paper's experiments (fewer
processes / resources, shorter duration) and verify the *shape* of the
results — who wins, in which regime — rather than absolute values:

* the paper's algorithm sustains a higher resource-use rate than the
  Bouabdallah–Laforest baseline under high load (Figure 5(b));
* its average waiting time for small requests is much lower than
  Bouabdallah–Laforest's (Figure 6);
* the incremental algorithm collapses as request sizes grow (domino
  effect, Figure 5);
* the loan mechanism does not hurt, and the shared-memory reference is an
  upper envelope on the use rate.
"""

import pytest

from repro.experiments.runner import run_experiment
from repro.workload.params import LoadLevel, WorkloadParams

#: Scaled-down version of the paper's testbed (32 procs / 80 resources).
#: rho is pushed below the default "high" level so the synchronisation cost
#: of the baselines is clearly visible at this reduced scale.
BASE = WorkloadParams(
    num_processes=20,
    num_resources=60,
    phi=4,
    duration=2_500.0,
    warmup=300.0,
    seed=5,
    load=LoadLevel.HIGH,
    rho=0.2,
)


@pytest.fixture(scope="module")
def high_load_small_requests():
    return {
        alg: run_experiment(alg, BASE)
        for alg in ("bouabdallah", "without_loan", "with_loan", "shared_memory")
    }


@pytest.fixture(scope="module")
def high_load_large_requests():
    params = BASE.with_phi(20)
    return {
        alg: run_experiment(alg, params)
        for alg in ("incremental", "bouabdallah", "with_loan", "shared_memory")
    }


class TestSmallRequestsHighLoad:
    def test_core_waits_less_than_global_lock(self, high_load_small_requests):
        """Figure 6(b): the counter mechanism avoids the control-token
        bottleneck, so small requests wait several times less."""
        bl = high_load_small_requests["bouabdallah"].metrics.waiting.mean
        ours = high_load_small_requests["without_loan"].metrics.waiting.mean
        assert ours < bl, f"expected lower waiting time ({ours:.1f} vs {bl:.1f} ms)"
        # The gap at this reduced scale is smaller than the paper's 8-11x
        # (see EXPERIMENTS.md), but it must be a real gap, not noise.
        assert ours <= bl * 0.97

    def test_core_use_rate_at_least_as_good_as_global_lock(self, high_load_small_requests):
        bl = high_load_small_requests["bouabdallah"].use_rate
        ours = high_load_small_requests["without_loan"].use_rate
        assert ours >= bl * 0.95

    def test_loan_variant_not_worse_than_without(self, high_load_small_requests):
        with_loan = high_load_small_requests["with_loan"].metrics.waiting.mean
        without = high_load_small_requests["without_loan"].metrics.waiting.mean
        assert with_loan <= without * 1.15

    def test_shared_memory_is_the_envelope(self, high_load_small_requests):
        reference = high_load_small_requests["shared_memory"].metrics.waiting.mean
        for algorithm in ("bouabdallah", "without_loan", "with_loan"):
            assert high_load_small_requests[algorithm].metrics.waiting.mean >= reference * 0.9


class TestLargeRequestsHighLoad:
    def test_incremental_suffers_domino_effect(self, high_load_large_requests):
        """Figure 5: with larger requests the incremental algorithm's use
        rate stays clearly below the paper's algorithm."""
        incremental = high_load_large_requests["incremental"].use_rate
        ours = high_load_large_requests["with_loan"].use_rate
        assert ours > incremental

    def test_use_rate_grows_with_request_size(self):
        """Figure 5 overall trend: larger maximum request sizes raise the
        resource-use rate for the paper's algorithm."""
        small = run_experiment("with_loan", BASE.with_phi(2))
        large = run_experiment("with_loan", BASE.with_phi(20))
        assert large.use_rate > small.use_rate

    def test_waiting_time_grows_with_request_size_for_core(self):
        """Figure 7: large requests wait longer than small ones under the
        counter-based scheduling."""
        params = BASE.with_phi(20)
        result = run_experiment("with_loan", params, size_buckets=[1, 10, 20])
        by_size = result.metrics.waiting_by_size
        present = [b for b in (1, 10, 20) if b in by_size and by_size[b].count >= 3]
        if len(present) >= 2:
            assert by_size[present[-1]].mean >= by_size[present[0]].mean * 0.5


class TestMediumLoad:
    def test_medium_load_waits_less_than_high_load(self):
        high = run_experiment("with_loan", BASE)
        medium = run_experiment("with_loan", BASE.with_load(LoadLevel.MEDIUM))
        assert medium.metrics.waiting.mean <= high.metrics.waiting.mean

    def test_bl_gap_shrinks_under_medium_load(self):
        """The control-token bottleneck matters less when requests are rare:
        the waiting-time ratio ours/BL should be at least as favourable in
        high load as in medium load."""
        medium_bl = run_experiment("bouabdallah", BASE.with_load(LoadLevel.MEDIUM))
        medium_core = run_experiment("without_loan", BASE.with_load(LoadLevel.MEDIUM))
        high_bl = run_experiment("bouabdallah", BASE)
        high_core = run_experiment("without_loan", BASE)
        ratio_medium = medium_core.metrics.waiting.mean / max(medium_bl.metrics.waiting.mean, 1e-9)
        ratio_high = high_core.metrics.waiting.mean / max(high_bl.metrics.waiting.mean, 1e-9)
        assert ratio_high <= ratio_medium * 1.1
