"""Cross-algorithm integration tests.

The same seeded workload is replayed against every algorithm through the
full experiment runner; every run is checked for safety (collector) and
liveness (all requests complete), and the different protocols are compared
on basic sanity relations.
"""

import pytest

from repro.experiments.registry import ALGORITHMS
from repro.experiments.runner import run_experiment
from repro.workload.params import LoadLevel, WorkloadParams


@pytest.fixture(scope="module")
def params():
    return WorkloadParams(
        num_processes=6,
        num_resources=12,
        phi=4,
        duration=1_200.0,
        warmup=200.0,
        seed=31,
        load=LoadLevel.HIGH,
    )


@pytest.fixture(scope="module")
def results(params):
    return {alg: run_experiment(alg, params) for alg in ALGORITHMS}


class TestAllAlgorithms:
    def test_all_complete_their_workload(self, results):
        for algorithm, result in results.items():
            assert result.metrics.completed == result.metrics.issued, algorithm
            assert result.metrics.issued > 0, algorithm

    def test_use_rates_in_valid_range(self, results):
        for algorithm, result in results.items():
            assert 0.0 < result.use_rate <= 100.0, algorithm

    def test_waiting_times_non_negative(self, results):
        for algorithm, result in results.items():
            assert result.metrics.waiting.mean >= 0.0, algorithm
            assert result.metrics.waiting.minimum >= 0.0, algorithm

    def test_shared_memory_reference_is_not_beaten_on_waiting(self, results):
        """No message-passing protocol can wait less than the zero-cost
        centralised scheduler on the same workload (modulo scheduling noise:
        allow a small tolerance)."""
        reference = results["shared_memory"].metrics.waiting.mean
        for algorithm in ("incremental", "bouabdallah", "without_loan", "with_loan"):
            assert results[algorithm].metrics.waiting.mean >= reference * 0.9, algorithm

    def test_distributed_algorithms_exchange_messages(self, results):
        for algorithm in ("incremental", "bouabdallah", "without_loan", "with_loan"):
            assert results[algorithm].metrics.messages_total > 0, algorithm

    def test_workload_sizes_comparable_across_algorithms(self, results):
        """All algorithms run the same closed-loop duration, so the issued
        request counts should be within the same order of magnitude."""
        issued = [r.metrics.issued for r in results.values()]
        assert max(issued) <= 10 * min(issued)


class TestDeterminism:
    def test_rerun_is_bitwise_identical(self, params):
        first = run_experiment("with_loan", params)
        second = run_experiment("with_loan", params)
        assert first.metrics.waiting.mean == second.metrics.waiting.mean
        assert first.metrics.use_rate == second.metrics.use_rate
        assert first.metrics.messages_total == second.metrics.messages_total
        assert first.events_processed == second.events_processed
