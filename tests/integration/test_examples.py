"""Every example script must run end-to-end from a fresh checkout."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "three_process_walkthrough.py",
    "gantt_illustration.py",
    "cloud_topology.py",
    "latency_ablation.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_figure_reproduction_example_quick_mode():
    path = EXAMPLES_DIR / "figure_reproduction.py"
    proc = subprocess.run(
        [sys.executable, str(path), "--load", "high"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Figure 5" in proc.stdout
    assert "Figure 6" in proc.stdout
    assert "Figure 7" in proc.stdout


def test_crash_recovery_example_quick_mode():
    """The crash ablation self-checks its recovery bar (exit 1 on regression)."""
    path = EXAMPLES_DIR / "crash_recovery.py"
    proc = subprocess.run(
        [sys.executable, str(path), "--quick"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Crash recovery" in proc.stdout
    assert "permanent" in proc.stdout and "blip" in proc.stdout
    assert "with_loan" in proc.stdout


def test_fault_ablation_example_quick_mode():
    path = EXAMPLES_DIR / "fault_ablation.py"
    proc = subprocess.run(
        [sys.executable, str(path), "--quick"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Control-plane loss" in proc.stdout
    assert "All-message loss" in proc.stdout
    assert "with_loan" in proc.stdout


def test_trace_ablation_example_quick_mode():
    """The workload ablation self-checks its burstiness story (exit 1 on regression)."""
    path = EXAMPLES_DIR / "trace_ablation.py"
    proc = subprocess.run(
        [sys.executable, str(path), "--quick"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Workload ablation" in proc.stdout
    assert "loan advantage" in proc.stdout
    assert "trace" in proc.stdout and "bursty" in proc.stdout
    assert "Self-checks passed" in proc.stdout


def test_reproduce_results_script_quick_mode():
    path = Path(__file__).resolve().parents[2] / "scripts" / "reproduce_results.py"
    proc = subprocess.run(
        [sys.executable, str(path), "--quick", "--seeds", "1"],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Figure 5" in proc.stdout and "Figure 7" in proc.stdout
