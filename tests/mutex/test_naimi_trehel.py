"""Unit tests for the Naimi–Tréhel mutual-exclusion substrate."""

from __future__ import annotations

from typing import List

import pytest

from repro.mutex.base import MutexError
from repro.mutex.naimi_trehel import NaimiTrehelInstance, NTRequest, NTToken
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.node import Node


class MutexHost(Node):
    """Host node multiplexing one Naimi–Tréhel instance."""

    def __init__(self, sim, network, node_id, initial_holder=0):
        super().__init__(sim, network, node_id)
        self.mutex = NaimiTrehelInstance(
            instance_id="lock", node_id=node_id, send_fn=self.send, initial_holder=initial_holder
        )
        self.cs_entries: List[float] = []
        self.cs_exits: List[float] = []

    def on_NTRequest(self, src, msg):
        self.mutex.handle(src, msg)

    def on_NTToken(self, src, msg):
        self.mutex.handle(src, msg)

    def enter_and_hold(self, hold: float) -> None:
        self.mutex.request(lambda: self._entered(hold))

    def _entered(self, hold: float) -> None:
        self.cs_entries.append(self.sim.now)
        self.sim.schedule(hold, self._exit)

    def _exit(self) -> None:
        self.cs_exits.append(self.sim.now)
        self.mutex.release()


def build_hosts(sim, n, gamma=1.0):
    network = Network(sim, ConstantLatency(gamma=gamma))
    return [MutexHost(sim, network, i) for i in range(n)]


class TestBasics:
    def test_initial_holder_enters_immediately(self, sim):
        hosts = build_hosts(sim, 3)
        hosts[0].enter_and_hold(5.0)
        sim.run()
        assert hosts[0].cs_entries == [0.0]

    def test_non_holder_obtains_token_after_round_trip(self, sim):
        hosts = build_hosts(sim, 3)
        hosts[1].enter_and_hold(5.0)
        sim.run()
        # request to node 0 (1 hop) + token back (1 hop) = 2 * gamma
        assert hosts[1].cs_entries == [2.0]

    def test_release_without_cs_raises(self, sim):
        hosts = build_hosts(sim, 2)
        with pytest.raises(MutexError):
            hosts[1].mutex.release()

    def test_double_request_raises(self, sim):
        hosts = build_hosts(sim, 2)
        hosts[1].mutex.request(lambda: None)
        with pytest.raises(MutexError):
            hosts[1].mutex.request(lambda: None)

    def test_unexpected_message_raises(self, sim):
        hosts = build_hosts(sim, 2)
        with pytest.raises(MutexError):
            hosts[0].mutex.handle(1, "garbage")


class TestMutualExclusion:
    def test_no_two_processes_in_cs_simultaneously(self, sim):
        hosts = build_hosts(sim, 5)
        for h in hosts:
            h.enter_and_hold(4.0)
        sim.run()
        intervals = []
        for h in hosts:
            assert len(h.cs_entries) == 1
            intervals.append((h.cs_entries[0], h.cs_exits[0]))
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2, "two critical sections overlap"

    def test_all_requests_eventually_satisfied(self, sim):
        hosts = build_hosts(sim, 8)
        for h in reversed(hosts):
            h.enter_and_hold(2.0)
        sim.run()
        assert all(len(h.cs_entries) == 1 for h in hosts)

    def test_repeated_cycles_by_same_pair(self, sim):
        hosts = build_hosts(sim, 2)

        def cycle(host, remaining):
            if remaining == 0:
                return
            host.mutex.request(lambda: _in_cs(host, remaining))

        def _in_cs(host, remaining):
            host.cs_entries.append(sim.now)
            sim.schedule(1.0, lambda: _leave(host, remaining))

        def _leave(host, remaining):
            host.cs_exits.append(sim.now)
            host.mutex.release()
            cycle(host, remaining - 1)

        cycle(hosts[0], 3)
        cycle(hosts[1], 3)
        sim.run()
        assert len(hosts[0].cs_entries) == 3
        assert len(hosts[1].cs_entries) == 3
        all_intervals = sorted(
            list(zip(hosts[0].cs_entries, hosts[0].cs_exits))
            + list(zip(hosts[1].cs_entries, hosts[1].cs_exits))
        )
        for (s1, e1), (s2, e2) in zip(all_intervals, all_intervals[1:]):
            assert e1 <= s2

    def test_token_holder_is_unique(self, sim):
        hosts = build_hosts(sim, 4)
        for h in hosts:
            h.enter_and_hold(1.0)
        sim.run()
        holders = [h for h in hosts if h.mutex.has_token]
        assert len(holders) == 1


class TestTokenPayload:
    def test_payload_travels_with_token(self, sim):
        hosts = build_hosts(sim, 3)
        hosts[0].mutex.token_payload = {"counter": 7}
        hosts[2].enter_and_hold(1.0)
        sim.run()
        assert hosts[2].mutex.token_payload == {"counter": 7}

    def test_on_token_received_hook(self, sim):
        network = Network(sim, ConstantLatency(gamma=1.0))
        seen = []

        class HookHost(MutexHost):
            def __init__(self, sim, network, node_id):
                Node.__init__(self, sim, network, node_id)
                self.mutex = NaimiTrehelInstance(
                    "lock", node_id, self.send, initial_holder=0,
                    on_token_received=seen.append,
                )
                self.cs_entries, self.cs_exits = [], []

        hosts = [HookHost(sim, network, i) for i in range(2)]
        hosts[0].mutex.token_payload = "payload"
        hosts[1].enter_and_hold(1.0)
        sim.run()
        assert seen == ["payload"]

    def test_payload_mutation_by_holder_propagates(self, sim):
        hosts = build_hosts(sim, 3)
        hosts[0].mutex.token_payload = [0]

        def mutate_and_release():
            hosts[1].cs_entries.append(sim.now)
            hosts[1].mutex.token_payload = [1]
            hosts[1].mutex.release()

        hosts[1].mutex.request(mutate_and_release)
        hosts[2].enter_and_hold(1.0)
        sim.run()
        assert hosts[2].mutex.token_payload == [1]
