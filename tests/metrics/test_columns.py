"""Unit tests for the struct-of-arrays record container."""

import math
import pickle

import pytest

from repro.metrics.columns import RecordColumns, RequestRecord


def sample_records():
    return [
        RequestRecord(
            process=0, index=0, resources=frozenset({0, 3}), issue_time=1.5,
            grant_time=2.25, release_time=7.125,
        ),
        RequestRecord(
            process=1, index=0, resources=frozenset({2}), issue_time=1.75,
            grant_time=3.5, release_time=None,  # granted, never released
        ),
        RequestRecord(
            process=0, index=1, resources=frozenset({1, 2, 4}), issue_time=8.0,
            grant_time=None, release_time=None,  # never granted
        ),
    ]


class TestRoundTrip:
    def test_from_records_iter_records_equality(self):
        records = sample_records()
        cols = RecordColumns.from_records(records, time_typecode="d")
        assert len(cols) == 3
        assert list(cols.iter_records()) == records
        assert cols.to_records() == records

    def test_getitem_indexing_slicing_negative(self):
        records = sample_records()
        cols = RecordColumns.from_records(records, time_typecode="d")
        assert cols[0] == records[0]
        assert cols[-1] == records[-1]
        assert cols[0:2] == records[0:2]
        with pytest.raises(IndexError):
            cols[3]
        with pytest.raises(IndexError):
            cols[-4]

    def test_views_expose_request_record_api(self):
        cols = RecordColumns.from_records(sample_records(), time_typecode="d")
        rec = cols[0]
        assert rec.size == 2
        assert rec.waiting_time == pytest.approx(0.75)
        assert rec.completed
        assert cols[2].waiting_time is None
        assert not cols[1].completed

    def test_incremental_append_matches_from_records(self):
        cols = RecordColumns(time_typecode="d")
        row = cols.append(5, 0, frozenset({1, 2}), 10.0)
        assert cols.grant_time(row) is None and cols.release_time(row) is None
        cols.set_grant(row, 11.0)
        cols.set_release(row, 12.0)
        assert cols[row] == RequestRecord(5, 0, frozenset({1, 2}), 10.0, 11.0, 12.0)
        assert cols.size_of(row) == 2
        assert cols.resources_of(row) == frozenset({1, 2})


class TestPickle:
    def test_pickle_round_trip_equality(self):
        cols = RecordColumns.from_records(sample_records(), time_typecode="d")
        clone = pickle.loads(pickle.dumps(cols))
        assert clone == cols
        assert clone.to_records() == cols.to_records()
        assert clone.content_key() == cols.content_key()

    def test_pickle_round_trip_float32(self):
        cols = RecordColumns.from_records(sample_records(), time_typecode="f")
        clone = pickle.loads(pickle.dumps(cols))
        assert clone == cols
        assert clone.time_typecode == "f"

    def test_pickle_preserves_nan_sentinels(self):
        cols = RecordColumns.from_records(sample_records(), time_typecode="d")
        clone = pickle.loads(pickle.dumps(cols))
        assert math.isnan(clone.grant[2]) and math.isnan(clone.release[2])
        assert clone[2].grant_time is None

    def test_pickle_smaller_than_record_list(self):
        records = [
            RequestRecord(p, i, frozenset({p, (p + i) % 7}), float(i), float(i) + 0.5, float(i) + 1.5)
            for p in range(4)
            for i in range(50)
        ]
        cols = RecordColumns.from_records(records)
        assert len(pickle.dumps(cols)) < len(pickle.dumps(records)) / 3

    def test_pickle_wide_values_round_trip(self):
        """Columns that do not fit narrow machine types fall back safely."""
        records = [
            RequestRecord(70_000, 9, frozenset({300, 1 << 40}), 1.0, 2.0, 3.0),
            RequestRecord(-3, 1 << 33, frozenset({2}), 4.0, None, None),
        ]
        cols = RecordColumns.from_records(records, time_typecode="d")
        assert pickle.loads(pickle.dumps(cols)).to_records() == records

    def test_pickle_elides_closed_loop_indexes(self):
        """Consecutive per-process indexes are rebuilt, not transported."""
        canonical = [
            RequestRecord(p, i, frozenset({p}), float(10 * p + i), None, None)
            for p in range(3)
            for i in range(4)
        ]
        cols = RecordColumns.from_records(canonical, time_typecode="d")
        assert cols._index_is_canonical()
        assert pickle.loads(pickle.dumps(cols)).to_records() == canonical
        gapped = RecordColumns.from_records(
            [RequestRecord(0, 7, frozenset({1}), 1.0, None, None)], time_typecode="d"
        )
        assert not gapped._index_is_canonical()
        assert pickle.loads(pickle.dumps(gapped)).index[0] == 7


class TestEmpty:
    def test_empty_container(self):
        cols = RecordColumns()
        assert len(cols) == 0
        assert list(cols) == []
        assert cols.to_records() == []
        assert list(cols.offsets) == [0]

    def test_empty_pickle_round_trip(self):
        cols = RecordColumns(time_typecode="d")
        clone = pickle.loads(pickle.dumps(cols))
        assert clone == cols and len(clone) == 0

    def test_empty_compact_and_content_key(self):
        cols = RecordColumns()
        assert len(cols.compact()) == 0
        assert cols.content_key() == RecordColumns().content_key()


class TestContentHash:
    def test_equal_content_equal_key(self):
        a = RecordColumns.from_records(sample_records(), time_typecode="d")
        b = RecordColumns.from_records(sample_records(), time_typecode="d")
        assert a == b
        assert a.content_key() == b.content_key()

    def test_key_changes_with_content(self):
        a = RecordColumns.from_records(sample_records(), time_typecode="d")
        b = RecordColumns.from_records(sample_records(), time_typecode="d")
        b.set_grant(2, 99.0)
        assert a != b
        assert a.content_key() != b.content_key()

    def test_time_typecode_is_part_of_identity(self):
        a = RecordColumns.from_records(sample_records(), time_typecode="d")
        b = RecordColumns.from_records(sample_records(), time_typecode="f")
        assert a.content_key() != b.content_key()


class TestCompact:
    def test_compact_sorts_by_process_index(self):
        cols = RecordColumns(time_typecode="d")
        cols.append(1, 0, frozenset({1}), 3.0)
        cols.append(0, 1, frozenset({2}), 2.0)
        cols.append(0, 0, frozenset({3}), 1.0)
        compacted = cols.compact(time_typecode="d")
        assert [(r.process, r.index) for r in compacted] == [(0, 0), (0, 1), (1, 0)]
        assert list(compacted.issue) == [1.0, 2.0, 3.0]

    def test_compact_float32_precision_contract(self):
        cols = RecordColumns(time_typecode="d")
        row = cols.append(0, 0, frozenset({1}), 1000.123456789)
        cols.set_grant(row, 1001.987654321)
        compacted = cols.compact()
        assert compacted.time_typecode == "f"
        # sub-microsecond at the simulated-millisecond scale
        assert compacted.issue[0] == pytest.approx(1000.123456789, abs=1e-3)
        assert compacted.grant[0] == pytest.approx(1001.987654321, abs=1e-3)

    def test_invalid_time_typecode_rejected(self):
        with pytest.raises(ValueError):
            RecordColumns(time_typecode="i")
