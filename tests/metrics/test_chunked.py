"""Tests for chunked record collection (O(chunk) memory for long runs)."""

import pickle

import pytest

from repro.experiments.scenario import Scenario
from repro.experiments.runner import run
from repro.metrics.collector import MetricsCollector
from repro.metrics.columns import ChunkedColumns, RecordColumns
from repro.workload.params import WorkloadParams

PARAMS = WorkloadParams(
    num_processes=4, num_resources=8, phi=3, rho=2.0, duration=800.0, warmup=80.0, seed=3
)


def drive(collector, n, overlap=0):
    """Feed ``n`` sequential single-resource lifecycles through the collector.

    ``overlap`` keeps that many trailing requests issued-but-unreleased,
    holding the completed prefix back.
    """
    t = 0.0
    for i in range(n):
        collector.on_issue(t, 0, i, frozenset({0}))
        collector.on_grant(t + 1.0, 0, i)
        if i < n - overlap:
            collector.on_release(t + 2.0, 0, i)
        else:
            # Must release resource 0 for the next same-resource grant to
            # pass the safety check; use abort to free without completing.
            collector.on_abort(t + 2.0, 0, i)
        t += 3.0


class TestCollectorChunking:
    def test_chunk_rows_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsCollector(num_resources=2, chunk_rows=0)

    def test_spill_requires_chunking(self):
        with pytest.raises(ValueError):
            MetricsCollector(num_resources=2, spill=True)

    def test_live_rows_bounded_by_chunk_size(self):
        c = MetricsCollector(num_resources=2, chunk_rows=16)
        drive(c, 500)
        assert c.max_live_rows <= 16 + 1  # one in-flight request at a time

    def test_unchunked_live_rows_grow_without_bound(self):
        c = MetricsCollector(num_resources=2)
        drive(c, 500)
        assert c.max_live_rows == 500

    def test_result_columns_preserves_every_row(self):
        c = MetricsCollector(num_resources=2, chunk_rows=16)
        drive(c, 100)
        cols = c.result_columns()
        assert isinstance(cols, ChunkedColumns)
        assert len(cols) == 100
        assert [cols[i].index for i in range(100)] == list(range(100))

    def test_incomplete_rows_hold_the_prefix(self):
        c = MetricsCollector(num_resources=2, chunk_rows=4)
        drive(c, 20, overlap=3)
        assert c.incomplete_requests() == [(0, 17), (0, 18), (0, 19)]
        cols = c.result_columns()
        assert len(cols) == 20

    def test_metrics_identical_to_unchunked(self):
        plain = MetricsCollector(num_resources=2, warmup=10.0)
        chunked = MetricsCollector(num_resources=2, warmup=10.0, chunk_rows=8)
        drive(plain, 200)
        drive(chunked, 200)
        a = plain.build("x", horizon=600.0)
        b = chunked.build("x", horizon=600.0)
        assert a == b

    def test_waiting_times_include_sealed_rows(self):
        c = MetricsCollector(num_resources=2, warmup=0.0, chunk_rows=8)
        drive(c, 100)
        assert len(c.waiting_times()) == 100
        by_size = c.waiting_times_by_size()
        assert sum(len(v) for v in by_size.values()) == 100


class TestEndToEndChunking:
    """run(Scenario(record_chunk_rows=...)) against the unchunked baseline."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return run(Scenario(algorithm="with_loan", params=PARAMS))

    @pytest.mark.parametrize("spill", [False, True])
    def test_run_metrics_bit_identical(self, baseline, spill):
        chunked = run(
            Scenario(
                algorithm="with_loan",
                params=PARAMS,
                record_chunk_rows=32,
                record_spill=spill,
            )
        )
        assert chunked.metrics == baseline.metrics

    def test_records_match_as_multisets(self, baseline):
        """Chunked columns are issue-ordered, unchunked are (process, index)-sorted."""
        chunked = run(
            Scenario(algorithm="with_loan", params=PARAMS, record_chunk_rows=32)
        )
        key = lambda r: (r.process, r.index)
        assert sorted(chunked.record_columns.to_records(), key=key) == sorted(
            baseline.record_columns.to_records(), key=key
        )

    def test_spilled_columns_pickle_roundtrip(self):
        result = run(
            Scenario(
                algorithm="with_loan",
                params=PARAMS,
                record_chunk_rows=32,
                record_spill=True,
            )
        )
        cols = result.record_columns
        clone = pickle.loads(pickle.dumps(cols))
        assert clone == cols
        assert clone.content_key() == cols.content_key()
        assert len(clone) == len(cols)


class TestChunkedColumnsContainer:
    def make(self, lengths):
        entries = []
        start = 0
        for n in lengths:
            cols = RecordColumns(time_typecode="f")
            for i in range(start, start + n):
                cols.process.append(0)
                cols.index.append(i)
                cols.issue.append(float(i))
                cols.grant.append(float(i) + 1.0)
                cols.release.append(float(i) + 2.0)
                cols.resource_ids.append(i % 4)
                cols.offsets.append(len(cols.resource_ids))
            entries.append(cols._packed())
            start += n
        return ChunkedColumns(entries, list(lengths))

    def test_len_and_indexing_across_chunks(self):
        cols = self.make([3, 4, 2])
        assert len(cols) == 9
        assert cols.chunk_count == 3
        assert cols.chunk_lengths() == (3, 4, 2)
        assert [cols[i].index for i in range(9)] == list(range(9))
        assert cols[-1].index == 8

    def test_slicing_and_iteration(self):
        cols = self.make([3, 4, 2])
        assert [r.index for r in cols[2:6]] == [2, 3, 4, 5]
        assert [r.index for r in cols] == list(range(9))
        assert len(cols.to_records()) == 9

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            self.make([2])[5]

    def test_to_columns_flattens(self):
        flat = self.make([3, 4, 2]).to_columns()
        assert isinstance(flat, RecordColumns)
        assert len(flat) == 9

    def test_content_key_distinguishes_boundaries(self):
        """Chunk boundaries are part of the content identity (documented)."""
        assert self.make([4, 4]).content_key() != self.make([8]).content_key()
        assert self.make([4, 4]).content_key() == self.make([4, 4]).content_key()

    def test_equality(self):
        assert self.make([3, 3]) == self.make([3, 3])
        assert self.make([3, 3]) != self.make([3, 2])
