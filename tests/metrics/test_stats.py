"""Unit tests for the summary statistics helpers."""

import pytest

from repro.metrics.stats import mean, percentile, stddev, summarize


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_single_value(self):
        assert mean([7.0]) == pytest.approx(7.0)


class TestStddev:
    def test_constant_sample_has_zero_spread(self):
        assert stddev([4.0, 4.0, 4.0]) == pytest.approx(0.0)

    def test_known_value(self):
        # population stddev of [2, 4, 4, 4, 5, 5, 7, 9] is 2
        assert stddev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)

    def test_fewer_than_two_samples(self):
        assert stddev([]) == 0.0
        assert stddev([3.0]) == 0.0


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([3.0, 1.0, 2.0], 50) == pytest.approx(2.0)

    def test_median_of_even_sample_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == pytest.approx(1.0)
        assert percentile(data, 100) == pytest.approx(9.0)

    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_single_element(self):
        assert percentile([3.5], 75) == pytest.approx(3.5)


class TestSummarize:
    def test_full_summary(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == pytest.approx(1.0)
        assert summary.maximum == pytest.approx(4.0)
        assert summary.median == pytest.approx(2.5)

    def test_empty_summary_is_all_zero(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.mean == 0.0
        assert summary.stddev == 0.0

    def test_describe_mentions_count_and_unit(self):
        text = summarize([1.0, 2.0]).describe(unit="ms")
        assert "n=2" in text and "ms" in text

    def test_accepts_generators(self):
        assert summarize(float(x) for x in range(5)).count == 5
