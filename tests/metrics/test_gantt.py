"""Unit tests for the ASCII Gantt rendering."""

import pytest

from repro.metrics.collector import RequestRecord
from repro.metrics.gantt import build_chart, render_gantt


def record(process, resources, grant, release, index=0, issue=None):
    return RequestRecord(
        process=process,
        index=index,
        resources=frozenset(resources),
        issue_time=issue if issue is not None else grant,
        grant_time=grant,
        release_time=release,
    )


class TestBuildChart:
    def test_busy_fraction(self):
        chart = build_chart([record(0, {0}, 0.0, 5.0)], num_resources=1, horizon=10.0)
        assert chart.busy_fraction(0) == pytest.approx(0.5)

    def test_overall_use_rate_averages_resources(self):
        chart = build_chart([record(0, {0}, 0.0, 10.0)], num_resources=2, horizon=10.0)
        assert chart.overall_use_rate() == pytest.approx(50.0)

    def test_incomplete_records_ignored(self):
        rec = RequestRecord(process=0, index=0, resources=frozenset({0}), issue_time=0.0)
        chart = build_chart([rec], num_resources=1, horizon=10.0)
        assert chart.busy_fraction(0) == 0.0

    def test_horizon_defaults_to_last_release(self):
        chart = build_chart([record(0, {0}, 0.0, 7.5)], num_resources=1)
        assert chart.horizon == pytest.approx(7.5)

    def test_empty_chart(self):
        chart = build_chart([], num_resources=2)
        assert chart.overall_use_rate() == 0.0


class TestRenderGantt:
    def test_render_contains_one_row_per_resource(self):
        text = render_gantt([record(0, {0, 1}, 0.0, 5.0)], num_resources=3, width=20, horizon=10.0)
        lines = text.splitlines()
        assert len(lines) == 4  # 3 resources + summary line
        assert lines[0].startswith("r0")

    def test_busy_cells_use_process_letter(self):
        text = render_gantt([record(0, {0}, 0.0, 10.0)], num_resources=1, width=10, horizon=10.0)
        assert "aaaaaaaaaa" in text.splitlines()[0]

    def test_idle_cells_are_dots(self):
        text = render_gantt([record(0, {0}, 0.0, 5.0)], num_resources=1, width=10, horizon=10.0)
        assert "." in text.splitlines()[0]

    def test_summary_line_reports_use_rate(self):
        text = render_gantt([record(0, {0}, 0.0, 10.0)], num_resources=2, width=10, horizon=10.0)
        assert "use rate = 50.0%" in text

    def test_empty_records_message(self):
        assert "empty gantt" in render_gantt([], num_resources=2)

    def test_resource_names_used_when_given(self):
        text = render_gantt(
            [record(0, {0}, 0.0, 1.0)], num_resources=2, width=10, horizon=2.0,
            resource_names=["red", "blue"],
        )
        assert text.splitlines()[0].startswith("red")
        assert text.splitlines()[1].startswith("blue")
