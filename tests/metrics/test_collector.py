"""Unit tests for the metrics collector (lifecycle, safety, aggregation)."""

import pytest

from repro.metrics.collector import MetricsCollector, SafetyViolation


def make_collector(m=4, warmup=0.0):
    return MetricsCollector(num_resources=m, warmup=warmup)


class TestLifecycle:
    def test_full_lifecycle_recorded(self):
        c = make_collector()
        c.on_issue(1.0, 0, 0, frozenset({0, 1}))
        c.on_grant(3.0, 0, 0)
        c.on_release(8.0, 0, 0)
        rec = c.record_for(0, 0)
        assert rec.waiting_time == pytest.approx(2.0)
        assert rec.completed
        assert c.all_completed()

    def test_duplicate_issue_rejected(self):
        c = make_collector()
        c.on_issue(1.0, 0, 0, frozenset({0}))
        with pytest.raises(ValueError):
            c.on_issue(2.0, 0, 0, frozenset({1}))

    def test_grant_for_unknown_request_rejected(self):
        with pytest.raises(ValueError):
            make_collector().on_grant(1.0, 0, 0)

    def test_release_before_grant_rejected(self):
        c = make_collector()
        c.on_issue(1.0, 0, 0, frozenset({0}))
        with pytest.raises(ValueError):
            c.on_release(2.0, 0, 0)

    def test_double_grant_rejected(self):
        c = make_collector()
        c.on_issue(1.0, 0, 0, frozenset({0}))
        c.on_grant(2.0, 0, 0)
        with pytest.raises(ValueError):
            c.on_grant(3.0, 0, 0)

    def test_double_release_rejected(self):
        c = make_collector()
        c.on_issue(1.0, 0, 0, frozenset({0}))
        c.on_grant(2.0, 0, 0)
        c.on_release(3.0, 0, 0)
        with pytest.raises(ValueError):
            c.on_release(4.0, 0, 0)

    def test_empty_resource_set_rejected(self):
        with pytest.raises(ValueError):
            make_collector().on_issue(1.0, 0, 0, frozenset())

    def test_all_completed_false_while_pending(self):
        c = make_collector()
        c.on_issue(1.0, 0, 0, frozenset({0}))
        assert not c.all_completed()


class TestSafetyCheck:
    def test_conflicting_grant_raises(self):
        c = make_collector()
        c.on_issue(1.0, 0, 0, frozenset({0, 1}))
        c.on_issue(1.0, 1, 0, frozenset({1, 2}))
        c.on_grant(2.0, 0, 0)
        with pytest.raises(SafetyViolation):
            c.on_grant(3.0, 1, 0)

    def test_non_conflicting_grants_allowed(self):
        c = make_collector()
        c.on_issue(1.0, 0, 0, frozenset({0}))
        c.on_issue(1.0, 1, 0, frozenset({1}))
        c.on_grant(2.0, 0, 0)
        c.on_grant(2.0, 1, 0)
        assert set(c.currently_held()) == {0, 1}

    def test_resource_free_after_release(self):
        c = make_collector()
        c.on_issue(1.0, 0, 0, frozenset({0}))
        c.on_grant(2.0, 0, 0)
        c.on_release(3.0, 0, 0)
        c.on_issue(3.0, 1, 0, frozenset({0}))
        c.on_grant(4.0, 1, 0)  # must not raise
        assert c.currently_held()[0] == (1, 0)

    def test_safety_check_can_be_disabled(self):
        c = MetricsCollector(num_resources=2, check_safety=False)
        c.on_issue(1.0, 0, 0, frozenset({0}))
        c.on_issue(1.0, 1, 0, frozenset({0}))
        c.on_grant(2.0, 0, 0)
        c.on_grant(2.5, 1, 0)  # tolerated when disabled


class TestUseRate:
    def test_single_busy_resource(self):
        c = make_collector(m=2)
        c.on_issue(0.0, 0, 0, frozenset({0}))
        c.on_grant(0.0, 0, 0)
        c.on_release(10.0, 0, 0)
        # resource 0 busy 10 of 10, resource 1 idle: 50%
        assert c.use_rate(horizon=10.0) == pytest.approx(50.0)

    def test_all_resources_busy_is_100(self):
        c = make_collector(m=2)
        c.on_issue(0.0, 0, 0, frozenset({0, 1}))
        c.on_grant(0.0, 0, 0)
        c.on_release(10.0, 0, 0)
        assert c.use_rate(horizon=10.0) == pytest.approx(100.0)

    def test_open_interval_counted_up_to_horizon(self):
        c = make_collector(m=1)
        c.on_issue(0.0, 0, 0, frozenset({0}))
        c.on_grant(2.0, 0, 0)
        assert c.use_rate(horizon=10.0) == pytest.approx(80.0)

    def test_warmup_excluded(self):
        c = MetricsCollector(num_resources=1, warmup=5.0)
        c.on_issue(0.0, 0, 0, frozenset({0}))
        c.on_grant(0.0, 0, 0)
        c.on_release(10.0, 0, 0)
        # busy over [5, 10] of the [5, 10] window
        assert c.use_rate(horizon=10.0) == pytest.approx(100.0)

    def test_zero_window_is_zero(self):
        c = MetricsCollector(num_resources=1, warmup=5.0)
        assert c.use_rate(horizon=5.0) == 0.0


class TestWaitingTimes:
    def test_waiting_excludes_warmup_requests(self):
        c = MetricsCollector(num_resources=2, warmup=10.0)
        c.on_issue(1.0, 0, 0, frozenset({0}))
        c.on_grant(2.0, 0, 0)
        c.on_release(3.0, 0, 0)
        c.on_issue(11.0, 0, 1, frozenset({0}))
        c.on_grant(15.0, 0, 1)
        c.on_release(16.0, 0, 1)
        assert c.waiting_times() == [pytest.approx(4.0)]

    def test_waiting_by_size_buckets(self):
        c = make_collector(m=10)
        c.on_issue(0.0, 0, 0, frozenset({0}))
        c.on_grant(1.0, 0, 0)
        c.on_issue(0.0, 1, 0, frozenset(range(1, 10)))
        c.on_grant(9.0, 1, 0)
        grouped = c.waiting_times_by_size(buckets=[1, 10])
        assert grouped[1] == [pytest.approx(1.0)]
        assert grouped[10] == [pytest.approx(9.0)]

    def test_waiting_by_exact_size(self):
        c = make_collector(m=10)
        c.on_issue(0.0, 0, 0, frozenset({0, 1, 2}))
        c.on_grant(2.0, 0, 0)
        grouped = c.waiting_times_by_size()
        assert list(grouped) == [3]


class TestBuild:
    def test_build_aggregates_counts_and_messages(self):
        c = make_collector(m=2)
        c.on_issue(0.0, 0, 0, frozenset({0}))
        c.on_grant(1.0, 0, 0)
        c.on_release(2.0, 0, 0)
        c.on_issue(0.0, 1, 0, frozenset({1}))
        metrics = c.build(
            algorithm="test", horizon=10.0, messages_total=20, messages_by_type={"Ping": 20}
        )
        assert metrics.issued == 2
        assert metrics.granted == 1
        assert metrics.completed == 1
        assert metrics.messages_per_cs == pytest.approx(20.0)
        assert metrics.messages_by_type == {"Ping": 20}
        assert "test" in metrics.describe()

    def test_build_with_no_completions(self):
        c = make_collector()
        metrics = c.build(algorithm="x", horizon=5.0)
        assert metrics.completed == 0
        assert metrics.messages_per_cs == 0.0

    def test_invalid_num_resources_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector(num_resources=0)


class TestAbort:
    def test_abort_frees_resources_for_the_safety_checker(self):
        collector = make_collector()
        collector.on_issue(0.0, 0, 0, frozenset({1, 2}))
        collector.on_grant(1.0, 0, 0)
        collector.on_abort(5.0, 0, 0)
        assert collector.aborted == 1
        assert collector.currently_held() == {}
        # Another process may now take the freed resources without
        # tripping the online safety check.
        collector.on_issue(5.0, 1, 0, frozenset({1}))
        collector.on_grant(6.0, 1, 0)

    def test_abort_closes_the_busy_interval_at_the_crash(self):
        collector = make_collector(m=1)
        collector.on_issue(0.0, 0, 0, frozenset({0}))
        collector.on_grant(2.0, 0, 0)
        collector.on_abort(6.0, 0, 0)
        # Busy from grant (2.0) to abort (6.0) out of a 10 ms horizon.
        assert collector.use_rate(10.0) == pytest.approx(40.0)

    def test_aborted_request_stays_incomplete(self):
        collector = make_collector()
        collector.on_issue(0.0, 0, 0, frozenset({1}))
        collector.on_grant(1.0, 0, 0)
        collector.on_abort(2.0, 0, 0)
        assert not collector.all_completed()
        metrics = collector.build(algorithm="x", horizon=10.0)
        assert metrics.completed == 0
        assert metrics.granted == 1

    def test_abort_before_grant_is_a_noop(self):
        # Nothing was held, so nothing is freed and nothing is counted:
        # ``aborted`` tallies critical sections cut short by a crash, not
        # requests that never got in.
        collector = make_collector()
        collector.on_issue(0.0, 0, 0, frozenset({1}))
        collector.on_abort(2.0, 0, 0)
        assert collector.aborted == 0
        assert collector.currently_held() == {}

    def test_abort_of_unknown_request_raises(self):
        collector = make_collector()
        with pytest.raises(ValueError):
            collector.on_abort(1.0, 0, 0)

    def test_abort_after_release_raises(self):
        collector = make_collector()
        collector.on_issue(0.0, 0, 0, frozenset({1}))
        collector.on_grant(1.0, 0, 0)
        collector.on_release(2.0, 0, 0)
        with pytest.raises(ValueError):
            collector.on_abort(3.0, 0, 0)
