"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.workload.params import LoadLevel, WorkloadParams


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def network(sim: Simulator) -> Network:
    """A network with a 0.5 ms constant latency attached to ``sim``."""
    return Network(sim, ConstantLatency(gamma=0.5))


@pytest.fixture
def small_params() -> WorkloadParams:
    """A small, fast workload configuration used by integration tests."""
    return WorkloadParams(
        num_processes=6,
        num_resources=12,
        phi=4,
        duration=1_500.0,
        warmup=150.0,
        seed=11,
        load=LoadLevel.HIGH,
    )
