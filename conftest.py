"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. running ``pytest`` straight from a fresh checkout in an
offline environment).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
